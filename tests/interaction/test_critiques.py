"""Tests for unit/compound critiquing and Apriori mining."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConstraintError
from repro.interaction.critiques import (
    CompoundCritique,
    UnitCritique,
    apply_critique,
    apriori,
    mine_compound_critiques,
)
from repro.recsys.knowledge import UserRequirements


class TestUnitCritique:
    def test_invalid_direction(self):
        with pytest.raises(ConstraintError):
            UnitCritique("price", "sideways")

    def test_phrase_uses_catalog_vocabulary(self, camera_world):
        __, catalog = camera_world
        assert UnitCritique("price", "less").phrase(catalog) == "Cheaper"
        assert UnitCritique("memory", "more").phrase(catalog) == "More Memory"
        assert UnitCritique("brand", "different").phrase(catalog) == (
            "Different brand"
        )

    def test_to_constraint_less(self, camera_world):
        dataset, __ = camera_world
        item = next(iter(dataset.items.values()))
        constraint = UnitCritique("price", "less").to_constraint(item)
        assert constraint.operator == "<="
        assert not constraint.satisfied_by(item)

    def test_to_constraint_more(self, camera_world):
        dataset, __ = camera_world
        item = next(iter(dataset.items.values()))
        constraint = UnitCritique("zoom", "more").to_constraint(item)
        assert constraint.operator == ">="
        assert not constraint.satisfied_by(item)

    def test_to_constraint_different(self, camera_world):
        dataset, __ = camera_world
        item = next(iter(dataset.items.values()))
        constraint = UnitCritique("brand", "different").to_constraint(item)
        assert not constraint.satisfied_by(item)

    def test_missing_attribute(self, camera_world):
        dataset, __ = camera_world
        item = next(iter(dataset.items.values()))
        with pytest.raises(ConstraintError):
            UnitCritique("nonexistent", "less").to_constraint(item)


class TestApriori:
    def test_counts_singletons(self):
        transactions = [frozenset("ab"), frozenset("ac"), frozenset("a")]
        frequent = apriori(transactions, min_support=2)
        assert frequent[frozenset("a")] == 3
        assert frozenset("b") not in frequent

    def test_pairs_require_frequent_subsets(self):
        transactions = [frozenset("ab")] * 3 + [frozenset("c")]
        frequent = apriori(transactions, min_support=2)
        assert frequent[frozenset("ab")] == 3
        assert frozenset("ac") not in frequent

    def test_max_size_limits_growth(self):
        transactions = [frozenset("abc")] * 5
        frequent = apriori(transactions, min_support=2, max_size=2)
        assert frozenset("abc") not in frequent
        assert frozenset("ab") in frequent

    def test_invalid_support(self):
        with pytest.raises(ValueError):
            apriori([], min_support=0)

    @given(
        st.lists(
            st.frozensets(st.sampled_from("abcde"), max_size=5),
            max_size=30,
        ),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40)
    def test_supports_are_exact(self, transactions, min_support):
        """Every reported support equals a brute-force recount."""
        frequent = apriori(transactions, min_support=min_support, max_size=3)
        for itemset, support in frequent.items():
            actual = sum(
                1 for transaction in transactions if itemset <= transaction
            )
            assert support == actual
            assert support >= min_support

    @given(
        st.lists(
            st.frozensets(st.sampled_from("abcd"), min_size=1, max_size=4),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=40)
    def test_completeness_up_to_size_two(self, transactions):
        """No frequent pair is ever missed."""
        min_support = 2
        frequent = apriori(transactions, min_support=min_support, max_size=2)
        elements = sorted({e for t in transactions for e in t})
        for pair in itertools.combinations(elements, 2):
            support = sum(
                1 for t in transactions if frozenset(pair) <= t
            )
            if support >= min_support:
                assert frozenset(pair) in frequent


class TestDynamicCritiques:
    def test_mined_critiques_are_compound(self, camera_world):
        dataset, catalog = camera_world
        items = list(dataset.items.values())
        critiques = mine_compound_critiques(catalog, items[0], items[1:])
        assert critiques
        for critique in critiques:
            assert len(critique.parts) >= 2
            assert critique.support >= 1

    def test_supports_match_coverage(self, camera_world):
        """Each compound's support equals the number of matching items."""
        dataset, catalog = camera_world
        items = list(dataset.items.values())
        reference = items[0]
        critiques = mine_compound_critiques(catalog, reference, items[1:])
        for critique in critiques[:3]:
            requirements = apply_critique(
                UserRequirements(), critique, reference
            )
            covered = [
                item
                for item in items[1:]
                if requirements.satisfied_by(item)
            ]
            assert len(covered) == critique.support

    def test_phrase_is_paper_style(self, camera_world):
        dataset, catalog = camera_world
        items = list(dataset.items.values())
        critiques = mine_compound_critiques(catalog, items[0], items[1:])
        phrase = critiques[0].phrase(catalog)
        assert " and " in phrase
        described = critiques[0].describe(catalog)
        assert "items)" in described

    def test_no_candidates(self, camera_world):
        dataset, catalog = camera_world
        items = list(dataset.items.values())
        assert mine_compound_critiques(catalog, items[0], []) == []

    def test_apply_unit_critique(self, camera_world):
        dataset, catalog = camera_world
        items = list(dataset.items.values())
        requirements = UserRequirements()
        updated = apply_critique(
            requirements, UnitCritique("price", "less"), items[0]
        )
        assert len(updated.constraints) == 1
        assert len(requirements.constraints) == 0  # original untouched

    def test_apply_compound_critique(self, camera_world):
        dataset, catalog = camera_world
        items = list(dataset.items.values())
        compound = CompoundCritique(
            parts=(
                UnitCritique("price", "less"),
                UnitCritique("memory", "more"),
            ),
            support=5,
        )
        updated = apply_critique(UserRequirements(), compound, items[0])
        assert len(updated.constraints) == 2
