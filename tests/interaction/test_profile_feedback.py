"""Tests for scrutable profiles and opinion feedback."""

from __future__ import annotations

import pytest

from repro.errors import DataError
from repro.interaction.feedback import Opinion, OpinionFeedback, OpinionHandler
from repro.interaction.profile import (
    ProfileRecommender,
    ScrutableProfile,
    infer_topic_interests,
)
from repro.recsys.data import Rating


class TestScrutableProfile:
    def test_volunteer_and_get(self):
        profile = ScrutableProfile("u")
        profile.volunteer("likes_football", True)
        attribute = profile.get("likes_football")
        assert attribute.value is True
        assert attribute.provenance == "volunteered"

    def test_infer_with_justification(self):
        profile = ScrutableProfile("u")
        profile.infer("likes:sports", True, because="you watched 14 items")
        assert "you watched 14 items" in profile.why("likes:sports")
        assert "You can change or delete this" in profile.why("likes:sports")

    def test_inference_never_overwrites_volunteered(self):
        """The TiVo lesson: the user's own statement outranks observation."""
        profile = ScrutableProfile("u")
        profile.volunteer("likes:war-movies", False)
        profile.infer("likes:war-movies", True, because="you recorded some")
        assert profile.value("likes:war-movies") is False

    def test_correct_becomes_volunteered_full_weight(self):
        profile = ScrutableProfile("u")
        profile.infer("likes:disney", True, because="3 liked items",
                      weight=0.2)
        profile.correct("likes:disney", False)
        attribute = profile.get("likes:disney")
        assert attribute.value is False
        assert attribute.provenance == "volunteered"
        assert attribute.weight == 1.0

    def test_correct_missing_raises(self):
        with pytest.raises(DataError):
            ScrutableProfile("u").correct("ghost", 1)

    def test_remove(self):
        profile = ScrutableProfile("u")
        profile.volunteer("a", 1)
        profile.remove("a")
        assert profile.get("a") is None
        with pytest.raises(DataError):
            profile.remove("a")

    def test_why_unknown_attribute(self):
        profile = ScrutableProfile("u")
        assert "nothing about" in profile.why("ghost")

    def test_edits_logged(self):
        profile = ScrutableProfile("u")
        profile.volunteer("a", 1)
        profile.infer("b", 2, because="x")
        profile.correct("b", 3)
        profile.remove("a")
        assert len(profile.edits) == 4

    def test_render_page_separates_provenance(self):
        profile = ScrutableProfile("u")
        profile.volunteer("climate", "hot")
        profile.infer("likes:beach", True, because="you liked 4 beach trips")
        page = profile.render_page()
        assert "[you said]" in page
        assert "[we inferred]" in page
        assert "why?" in page

    def test_attributes_order_volunteered_first(self):
        profile = ScrutableProfile("u")
        profile.infer("z_inferred", 1, because="x")
        profile.volunteer("a_volunteered", 2)
        names = [a.name for a in profile.attributes()]
        assert names[0] == "a_volunteered"

    def test_as_evidence(self):
        profile = ScrutableProfile("u")
        profile.volunteer("climate", "hot")
        evidence = profile.as_evidence()
        assert evidence[0].attribute == "climate"
        assert evidence[0].provenance == "volunteered"


class TestInference:
    def test_infers_liked_and_disliked_topics(self, tiny_dataset):
        profile = ScrutableProfile("alice")
        written = infer_topic_interests(
            profile, tiny_dataset, min_observations=1
        )
        assert "likes:scifi" in written
        assert profile.value("likes:scifi") is True
        assert profile.value("likes:romance") is False

    def test_min_observations_threshold(self, tiny_dataset):
        profile = ScrutableProfile("alice")
        infer_topic_interests(profile, tiny_dataset, min_observations=3)
        # alice has only 2 scifi + 1 romance ratings
        assert profile.get("likes:scifi") is None


class TestProfileRecommender:
    def test_edit_changes_recommendations(self, tiny_dataset):
        """The scrutability loop: correcting the profile reranks items."""
        profile = ScrutableProfile("alice")
        infer_topic_interests(profile, tiny_dataset, min_observations=1)
        recommender = ProfileRecommender(profile).fit(tiny_dataset)
        before = recommender.predict("alice", "i3")  # drama, unknown topic
        scifi_before = recommender.predict("alice", "i1").value
        profile.correct("likes:scifi", False)
        scifi_after = recommender.predict("alice", "i1").value
        assert scifi_after < scifi_before
        assert recommender.predict("alice", "i3").value == before.value

    def test_evidence_lists_used_attributes(self, tiny_dataset):
        profile = ScrutableProfile("alice")
        infer_topic_interests(profile, tiny_dataset, min_observations=1)
        recommender = ProfileRecommender(profile).fit(tiny_dataset)
        prediction = recommender.predict("alice", "i1")
        assert any(
            record.attribute == "likes:scifi"
            for record in prediction.evidence
        )


class TestOpinionHandler:
    @pytest.fixture()
    def handler(self, tiny_dataset):
        return OpinionHandler(tiny_dataset, ScrutableProfile("alice"))

    def test_more_like_this(self, handler):
        reply = handler.apply(
            OpinionFeedback(Opinion.MORE_LIKE_THIS, item_id="i1")
        )
        assert "more" in reply
        assert handler.profile.value("likes:scifi") is True

    def test_more_later_marks_known(self, handler):
        handler.apply(OpinionFeedback(Opinion.MORE_LATER, item_id="i1"))
        assert "i1" in handler.known_items
        assert handler.profile.value("likes:scifi") is True

    def test_already_know_liked_is_not_negative(self, handler):
        reply = handler.apply(
            OpinionFeedback(
                Opinion.ALREADY_KNOW_THIS, item_id="i1", liked=True
            )
        )
        assert "i1" in handler.known_items
        assert handler.profile.value("likes:scifi") is True
        assert "on target" in reply

    def test_already_know_unliked_only_hides(self, handler):
        handler.apply(
            OpinionFeedback(Opinion.ALREADY_KNOW_THIS, item_id="i1")
        )
        assert "i1" in handler.known_items
        assert handler.profile.get("likes:scifi") is None

    def test_no_more_like_this_suppresses_topic(self, handler):
        handler.apply(
            OpinionFeedback(Opinion.NO_MORE_LIKE_THIS, item_id="i4")
        )
        assert handler.profile.value("likes:romance") is False
        assert "romance" in handler.suppressed_topics
        filtered = handler.filter_items(["i1", "i4", "i5"])
        assert filtered == ["i1"]

    def test_aspect_level_feedback(self, handler):
        """'I like the sport, but not the distant location.'"""
        handler.apply(
            OpinionFeedback(
                Opinion.NO_MORE_LIKE_THIS, item_id="i1",
                aspect="distant-location",
            )
        )
        # only the aspect is suppressed, not the item's own topic
        assert handler.profile.get("likes:scifi") is None
        assert handler.profile.value("likes:distant-location") is False

    def test_surprise_me_ramps_exploration(self, handler):
        assert handler.surprise_level == 0.0
        reply = handler.apply(OpinionFeedback(Opinion.SURPRISE_ME))
        assert handler.surprise_level == 0.25
        assert "25%" in reply
        handler.apply(OpinionFeedback(Opinion.SURPRISE_ME))
        assert handler.surprise_level == 0.5

    def test_item_required_for_item_opinions(self, handler):
        with pytest.raises(DataError):
            handler.apply(OpinionFeedback(Opinion.MORE_LIKE_THIS))

    def test_unknown_item_rejected(self, handler):
        with pytest.raises(DataError):
            handler.apply(
                OpinionFeedback(Opinion.MORE_LIKE_THIS, item_id="ghost")
            )

    def test_log_records_everything(self, handler):
        handler.apply(OpinionFeedback(Opinion.SURPRISE_ME))
        handler.apply(OpinionFeedback(Opinion.MORE_LIKE_THIS, item_id="i1"))
        assert len(handler.log) == 2


class TestRatingChannelIntegration:
    def test_rating_channel_feeds_profile_inference(self, tiny_dataset):
        """Down-rating a topic, then re-inferring, flips the profile."""
        profile = ScrutableProfile("alice")
        infer_topic_interests(profile, tiny_dataset, min_observations=1)
        assert profile.value("likes:scifi") is True
        tiny_dataset.add_rating(Rating("alice", "i1", 1.0))
        tiny_dataset.add_rating(Rating("alice", "i2", 1.0))
        infer_topic_interests(profile, tiny_dataset, min_observations=1)
        assert profile.value("likes:scifi") is False
