"""Tests for the synthetic domain generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.domains import (
    CUISINES,
    DESTINATIONS,
    make_books,
    make_cameras,
    make_holidays,
    make_movies,
    make_news,
    make_restaurants,
)


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory", [make_movies, make_books, make_news]
    )
    def test_latent_worlds_deterministic(self, factory):
        world_a = factory(n_users=10, n_items=20, seed=5)
        world_b = factory(n_users=10, n_items=20, seed=5)
        assert list(world_a.dataset.items) == list(world_b.dataset.items)
        ratings_a = [
            (r.user_id, r.item_id, r.value)
            for r in world_a.dataset.iter_ratings()
        ]
        ratings_b = [
            (r.user_id, r.item_id, r.value)
            for r in world_b.dataset.iter_ratings()
        ]
        assert ratings_a == ratings_b

    def test_different_seeds_differ(self):
        a = make_movies(n_users=10, n_items=20, seed=1)
        b = make_movies(n_users=10, n_items=20, seed=2)
        assert [
            round(r.value, 2) for r in a.dataset.iter_ratings()
        ] != [round(r.value, 2) for r in b.dataset.iter_ratings()]

    @pytest.mark.parametrize(
        "factory", [make_cameras, make_restaurants, make_holidays]
    )
    def test_catalog_worlds_deterministic(self, factory):
        dataset_a, __ = factory(seed=9)
        dataset_b, __ = factory(seed=9)
        assert [
            item.attributes for item in dataset_a.items.values()
        ] == [item.attributes for item in dataset_b.items.values()]


class TestLatentWorlds:
    def test_ratings_on_scale(self, movie_world):
        for rating in movie_world.dataset.iter_ratings():
            assert 1.0 <= rating.value <= 5.0

    def test_true_utility_on_scale(self, movie_world):
        user_id = next(iter(movie_world.dataset.users))
        for item_id in list(movie_world.dataset.items)[:20]:
            value = movie_world.true_utility(user_id, item_id)
            assert 1.0 <= value <= 5.0

    def test_favorite_genre_has_higher_true_utility(self, movie_world):
        """Latent structure: the stated favourite genre really is liked."""
        gaps = []
        for user_id in movie_world.dataset.users:
            favorite = movie_world.dataset.user(user_id).attributes[
                "favorite_genre"
            ]
            same, other = [], []
            for item_id, item in movie_world.dataset.items.items():
                value = movie_world.true_utility(user_id, item_id)
                (same if favorite in item.topics else other).append(value)
            gaps.append(np.mean(same) - np.mean(other))
        assert np.mean(gaps) > 0.3

    def test_relevant_items_use_threshold(self, movie_world):
        user_id = next(iter(movie_world.dataset.users))
        relevant = movie_world.relevant_items(user_id)
        for item_id in relevant:
            assert movie_world.true_utility(user_id, item_id) >= 4.0

    def test_observed_ratings_correlate_with_truth(self, movie_world):
        truths, observations = [], []
        for rating in movie_world.dataset.iter_ratings():
            truths.append(
                movie_world.true_utility(rating.user_id, rating.item_id)
            )
            observations.append(rating.value)
        assert np.corrcoef(truths, observations)[0, 1] > 0.6

    def test_book_authors_in_keywords(self, book_world):
        for item in book_world.dataset.items.values():
            assert str(item.attributes["author"]) in item.keywords

    def test_news_has_hierarchical_sections(self, news_world):
        topics = news_world.dataset.topics()
        assert any("/" in topic for topic in topics)
        for item in news_world.dataset.items.values():
            assert "importance" in item.attributes


class TestCatalogWorlds:
    def test_camera_attributes_in_catalog_ranges(self, camera_world):
        dataset, catalog = camera_world
        for item in dataset.items.values():
            for name, spec in catalog.attributes.items():
                if spec.kind != "numeric":
                    continue
                value = float(item.attributes[name])
                assert spec.low <= value <= spec.high, (name, value)

    def test_camera_price_correlates_with_resolution(self):
        dataset, __ = make_cameras(n_items=200, seed=3)
        prices = [float(i.attributes["price"]) for i in dataset.items.values()]
        resolutions = [
            float(i.attributes["resolution"]) for i in dataset.items.values()
        ]
        assert np.corrcoef(prices, resolutions)[0, 1] > 0.4

    def test_restaurant_cuisines_valid(self, restaurant_world):
        dataset, __ = restaurant_world
        for item in dataset.items.values():
            assert item.attributes["cuisine"] in CUISINES

    def test_holiday_climate_consistent_with_destination(self, holiday_world):
        dataset, __ = holiday_world
        by_destination: dict[str, set[str]] = {}
        for item in dataset.items.values():
            destination = str(item.attributes["destination"])
            assert destination in DESTINATIONS
            by_destination.setdefault(destination, set()).add(
                str(item.attributes["climate"])
            )
        for climates in by_destination.values():
            assert len(climates) == 1  # one climate per destination

    def test_holiday_family_friendly_activities(self, holiday_world):
        dataset, __ = holiday_world
        for item in dataset.items.values():
            if item.attributes["activity"] == "family-park":
                assert item.attributes["family_friendly"] is True


class TestPeopleDomain:
    def test_deterministic(self):
        from repro.domains import make_people

        a, __ = make_people(seed=5)
        b, __ = make_people(seed=5)
        assert [i.attributes for i in a.items.values()] == [
            i.attributes for i in b.items.values()
        ]

    def test_attributes_in_catalog_ranges(self):
        from repro.domains import INTERESTS, make_people

        dataset, catalog = make_people()
        for item in dataset.items.values():
            assert 18 <= float(item.attributes["age"]) <= 70
            assert item.attributes["interest"] in INTERESTS
            assert isinstance(item.attributes["wants_children"], bool)

    def test_requirements_flow(self):
        """The OkCupid row: specify requirements, get predicted matches."""
        from repro.domains import make_people
        from repro.recsys import (
            Constraint,
            KnowledgeBasedRecommender,
            Preference,
            UserRequirements,
        )

        dataset, catalog = make_people()
        recommender = KnowledgeBasedRecommender(catalog).fit(dataset)
        requirements = UserRequirements(
            constraints=[
                Constraint("age", ">=", 25),
                Constraint("age", "<=", 40),
                Constraint("wants_children", "==", False),
            ],
            preferences=[
                Preference("distance_km", weight=2.0),
                Preference("interest", weight=1.5, target="hiking"),
            ],
        )
        ranked = recommender.rank(requirements, n=5)
        assert ranked
        for person, __, __ in ranked:
            assert 25 <= float(person.attributes["age"]) <= 40
            assert person.attributes["wants_children"] is False
